#include "src/common/fault_injection.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace bclean {
namespace fault {
namespace {

/// Splitmix64 finalizer: the per-arrival pseudo-random draw.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a 64-bit draw.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

struct Point {
  FaultSpec spec;
  bool armed = false;
  size_t hits = 0;      // arrivals since last Arm
  size_t triggers = 0;  // triggered arrivals since last Arm
};

}  // namespace

struct Registry::State {
  // Fast idle path: every BCLEAN_FAULT_POINT crossing loads this once and
  // returns when no point is armed anywhere.
  std::atomic<size_t> armed_count{0};
  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

Registry& Registry::Instance() {
  static Registry instance;
  return instance;
}

Registry::State* Registry::state() const {
  // Leaked singleton: fault points may be crossed during static
  // destruction (pool workers joining at exit).
  static State* s = new State();
  return s;
}

void Registry::Arm(const std::string& point, FaultSpec spec) {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  Point& p = s->points[point];
  if (!p.armed) s->armed_count.fetch_add(1, std::memory_order_relaxed);
  p.spec = std::move(spec);
  p.armed = true;
  p.hits = 0;
  p.triggers = 0;
}

void Registry::Disarm(const std::string& point) {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  if (it == s->points.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.spec.on_trigger = nullptr;  // drop captured test state
  s->armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void Registry::Reset() {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  for (auto& [name, p] : s->points) {
    if (p.armed) s->armed_count.fetch_sub(1, std::memory_order_relaxed);
    p.armed = false;
  }
  s->points.clear();
}

bool Registry::Hit(std::string_view point) {
  State* s = state();
  if (s->armed_count.load(std::memory_order_relaxed) == 0) return false;
  std::chrono::milliseconds stall{0};
  std::function<void()> callback;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    auto it = s->points.find(std::string(point));
    if (it == s->points.end() || !it->second.armed) return false;
    Point& p = it->second;
    const size_t arrival = p.hits++;
    const FaultSpec& spec = p.spec;
    if (arrival < spec.skip_first) return false;
    if (p.triggers >= spec.max_triggers) return false;
    if (spec.probability < 1.0 &&
        ToUnit(Mix(spec.seed ^ arrival)) >= spec.probability) {
      return false;
    }
    ++p.triggers;
    stall = spec.stall;
    callback = spec.on_trigger;  // copy: runs outside the lock
    fail = spec.fail;
  }
  if (stall.count() > 0) std::this_thread::sleep_for(stall);
  if (callback) callback();
  return fail;
}

size_t Registry::hits(const std::string& point) const {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  return it == s->points.end() ? 0 : it->second.hits;
}

size_t Registry::triggers(const std::string& point) const {
  State* s = state();
  std::lock_guard<std::mutex> lock(s->mu);
  auto it = s->points.find(point);
  return it == s->points.end() ? 0 : it->second.triggers;
}

}  // namespace fault
}  // namespace bclean
