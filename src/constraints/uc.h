// User constraints (UCs), the paper's lightweight prior-knowledge mechanism
// (Section 2): any function over a cell value returning 0/1. Built-in kinds
// cover the forms evaluated in the paper (Table 3) — length bounds, numeric
// value bounds, non-null, regular expressions — plus an escape hatch for
// arbitrary predicates (Section 2 notes even a neural net qualifies).
#ifndef BCLEAN_CONSTRAINTS_UC_H_
#define BCLEAN_CONSTRAINTS_UC_H_

#include <memory>
#include <string>

namespace bclean {

/// Category of a constraint; the Figure 5 ablation removes UCs by kind.
enum class UcKind {
  kMinLength,
  kMaxLength,
  kMinValue,
  kMaxValue,
  kNotNull,
  kPattern,
  kCustom,
};

/// Human-readable name of a UcKind ("Min", "Max", "Nul", "Pat", ...).
const char* UcKindName(UcKind kind);

/// A user constraint over one cell value. Implementations must be pure
/// (no side effects) and cheap: the engine evaluates them over whole
/// candidate domains.
class UserConstraint {
 public:
  virtual ~UserConstraint() = default;

  /// Returns true iff `value` satisfies the constraint (UC(value) = 1).
  virtual bool Check(const std::string& value) const = 0;

  /// The constraint's category.
  virtual UcKind kind() const = 0;

  /// One-line human-readable description.
  virtual std::string Describe() const = 0;
};

using UserConstraintPtr = std::shared_ptr<const UserConstraint>;

}  // namespace bclean

#endif  // BCLEAN_CONSTRAINTS_UC_H_
