#include "src/constraints/builtin.h"

#include "src/common/string_util.h"

namespace bclean {

const char* UcKindName(UcKind kind) {
  switch (kind) {
    case UcKind::kMinLength: return "Min";
    case UcKind::kMaxLength: return "Max";
    case UcKind::kMinValue: return "MinVal";
    case UcKind::kMaxValue: return "MaxVal";
    case UcKind::kNotNull: return "Nul";
    case UcKind::kPattern: return "Pat";
    case UcKind::kCustom: return "Custom";
  }
  return "?";
}

bool MinValueConstraint::Check(const std::string& value) const {
  if (value.empty()) return true;
  if (!IsNumeric(value)) return false;
  return ParseDouble(value) >= min_value_;
}

bool MaxValueConstraint::Check(const std::string& value) const {
  if (value.empty()) return true;
  if (!IsNumeric(value)) return false;
  return ParseDouble(value) <= max_value_;
}

UserConstraintPtr MinLength(size_t n) {
  return std::make_shared<MinLengthConstraint>(n);
}
UserConstraintPtr MaxLength(size_t n) {
  return std::make_shared<MaxLengthConstraint>(n);
}
UserConstraintPtr MinValue(double v) {
  return std::make_shared<MinValueConstraint>(v);
}
UserConstraintPtr MaxValue(double v) {
  return std::make_shared<MaxValueConstraint>(v);
}
UserConstraintPtr NotNull() { return std::make_shared<NotNullConstraint>(); }
UserConstraintPtr Pattern(std::string regex) {
  return std::make_shared<PatternConstraint>(std::move(regex));
}
UserConstraintPtr Custom(std::string description,
                         std::function<bool(const std::string&)> predicate) {
  return std::make_shared<CustomConstraint>(std::move(description),
                                            std::move(predicate));
}

}  // namespace bclean
