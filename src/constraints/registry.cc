#include "src/constraints/registry.h"

namespace bclean {

Status UcRegistry::Add(size_t attr, UserConstraintPtr constraint) {
  if (attr >= num_attributes_) {
    return Status::OutOfRange("attribute index " + std::to_string(attr) +
                              " out of range (have " +
                              std::to_string(num_attributes_) + ")");
  }
  if (constraint == nullptr) {
    return Status::InvalidArgument("constraint must not be null");
  }
  constraints_[attr].push_back(std::move(constraint));
  return Status::OK();
}

void UcRegistry::AddToAll(const UserConstraintPtr& constraint) {
  for (size_t attr = 0; attr < num_attributes_; ++attr) {
    constraints_[attr].push_back(constraint);
  }
}

bool UcRegistry::Check(size_t attr, const std::string& value) const {
  assert(attr < constraints_.size());
  for (const UserConstraintPtr& uc : constraints_[attr]) {
    if (!uc->Check(value)) return false;
  }
  return true;
}

void UcRegistry::CountTuple(const std::vector<std::string>& tuple,
                            size_t* satisfied, size_t* violated) const {
  *satisfied = 0;
  *violated = 0;
  for (size_t attr = 0; attr < tuple.size() && attr < num_attributes_;
       ++attr) {
    if (Check(attr, tuple[attr])) {
      ++*satisfied;
    } else {
      ++*violated;
    }
  }
}

UcRegistry UcRegistry::Without(const std::set<UcKind>& kinds) const {
  UcRegistry out(num_attributes_);
  for (size_t attr = 0; attr < num_attributes_; ++attr) {
    for (const UserConstraintPtr& uc : constraints_[attr]) {
      if (kinds.count(uc->kind()) == 0) {
        out.constraints_[attr].push_back(uc);
      }
    }
  }
  return out;
}

size_t UcRegistry::TotalConstraints() const {
  size_t total = 0;
  for (const auto& list : constraints_) total += list.size();
  return total;
}

}  // namespace bclean
