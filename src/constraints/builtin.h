// Built-in user-constraint implementations and factory helpers.
#ifndef BCLEAN_CONSTRAINTS_BUILTIN_H_
#define BCLEAN_CONSTRAINTS_BUILTIN_H_

#include <functional>
#include <regex>
#include <string>

#include "src/constraints/uc.h"

namespace bclean {

/// value must have length >= `min_length` (NULLs pass; non-null is a
/// separate constraint so each UC stays orthogonal, as in the paper).
class MinLengthConstraint : public UserConstraint {
 public:
  explicit MinLengthConstraint(size_t min_length) : min_length_(min_length) {}
  bool Check(const std::string& value) const override {
    return value.empty() || value.size() >= min_length_;
  }
  UcKind kind() const override { return UcKind::kMinLength; }
  std::string Describe() const override {
    return "len >= " + std::to_string(min_length_);
  }

 private:
  size_t min_length_;
};

/// value must have length <= `max_length` (NULLs pass).
class MaxLengthConstraint : public UserConstraint {
 public:
  explicit MaxLengthConstraint(size_t max_length) : max_length_(max_length) {}
  bool Check(const std::string& value) const override {
    return value.size() <= max_length_;
  }
  UcKind kind() const override { return UcKind::kMaxLength; }
  std::string Describe() const override {
    return "len <= " + std::to_string(max_length_);
  }

 private:
  size_t max_length_;
};

/// Numeric value must be >= `min_value`. Non-numeric values fail; NULLs pass.
class MinValueConstraint : public UserConstraint {
 public:
  explicit MinValueConstraint(double min_value) : min_value_(min_value) {}
  bool Check(const std::string& value) const override;
  UcKind kind() const override { return UcKind::kMinValue; }
  std::string Describe() const override {
    return "value >= " + std::to_string(min_value_);
  }

 private:
  double min_value_;
};

/// Numeric value must be <= `max_value`. Non-numeric values fail; NULLs pass.
class MaxValueConstraint : public UserConstraint {
 public:
  explicit MaxValueConstraint(double max_value) : max_value_(max_value) {}
  bool Check(const std::string& value) const override;
  UcKind kind() const override { return UcKind::kMaxValue; }
  std::string Describe() const override {
    return "value <= " + std::to_string(max_value_);
  }

 private:
  double max_value_;
};

/// value must not be NULL.
class NotNullConstraint : public UserConstraint {
 public:
  bool Check(const std::string& value) const override {
    return !value.empty();
  }
  UcKind kind() const override { return UcKind::kNotNull; }
  std::string Describe() const override { return "not null"; }
};

/// value must fully match an ECMAScript regular expression (NULLs pass so
/// the pattern composes with NotNull the way Table 3's UC lists do).
class PatternConstraint : public UserConstraint {
 public:
  explicit PatternConstraint(std::string pattern)
      : pattern_text_(std::move(pattern)),
        pattern_(pattern_text_, std::regex::ECMAScript | std::regex::optimize) {
  }
  bool Check(const std::string& value) const override {
    return value.empty() || std::regex_match(value, pattern_);
  }
  UcKind kind() const override { return UcKind::kPattern; }
  std::string Describe() const override { return "matches " + pattern_text_; }

 private:
  std::string pattern_text_;
  std::regex pattern_;
};

/// Arbitrary predicate constraint — the paper's "any function that returns a
/// binary output" (dependency rules, arithmetic expressions, even DNNs).
class CustomConstraint : public UserConstraint {
 public:
  CustomConstraint(std::string description,
                   std::function<bool(const std::string&)> predicate)
      : description_(std::move(description)),
        predicate_(std::move(predicate)) {}
  bool Check(const std::string& value) const override {
    return predicate_(value);
  }
  UcKind kind() const override { return UcKind::kCustom; }
  std::string Describe() const override { return description_; }

 private:
  std::string description_;
  std::function<bool(const std::string&)> predicate_;
};

/// Factory helpers (shared_ptr for cheap registry copies).
UserConstraintPtr MinLength(size_t n);
UserConstraintPtr MaxLength(size_t n);
UserConstraintPtr MinValue(double v);
UserConstraintPtr MaxValue(double v);
UserConstraintPtr NotNull();
UserConstraintPtr Pattern(std::string regex);
UserConstraintPtr Custom(std::string description,
                         std::function<bool(const std::string&)> predicate);

}  // namespace bclean

#endif  // BCLEAN_CONSTRAINTS_BUILTIN_H_
