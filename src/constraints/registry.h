// Per-attribute registry of user constraints: the UC(.) function of the
// paper applied cell-wise, plus the tuple-level satisfaction counts that the
// compensatory model's conf(T) (Equation 3) consumes.
#ifndef BCLEAN_CONSTRAINTS_REGISTRY_H_
#define BCLEAN_CONSTRAINTS_REGISTRY_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/constraints/uc.h"
#include "src/data/schema.h"

namespace bclean {

/// Holds the user constraints for every attribute of one schema.
class UcRegistry {
 public:
  UcRegistry() = default;
  /// Registry over `schema` with no constraints (every check passes).
  explicit UcRegistry(const Schema& schema)
      : num_attributes_(schema.size()), constraints_(schema.size()) {}
  /// Registry over `num_attributes` columns with no constraints.
  explicit UcRegistry(size_t num_attributes)
      : num_attributes_(num_attributes), constraints_(num_attributes) {}

  /// Attaches `constraint` to attribute `attr`.
  Status Add(size_t attr, UserConstraintPtr constraint);

  /// Attaches `constraint` to every attribute.
  void AddToAll(const UserConstraintPtr& constraint);

  /// UC(value) for attribute `attr`: true iff every registered constraint
  /// passes (vacuously true with none registered).
  bool Check(size_t attr, const std::string& value) const;

  /// Number of attribute values in `tuple` with UC = 1 / UC = 0.
  /// Used by conf(T) (Equation 3).
  void CountTuple(const std::vector<std::string>& tuple, size_t* satisfied,
                  size_t* violated) const;

  /// Copy of this registry without constraints of the given kinds —
  /// the Figure 5 incomplete-UC ablation.
  UcRegistry Without(const std::set<UcKind>& kinds) const;

  /// Copy of this registry with no constraints at all (Figure 5's "All").
  UcRegistry Empty() const { return UcRegistry(num_attributes_); }

  /// Constraints registered for `attr`.
  const std::vector<UserConstraintPtr>& constraints(size_t attr) const {
    assert(attr < constraints_.size());
    return constraints_[attr];
  }

  /// Total number of registered constraints.
  size_t TotalConstraints() const;

  /// Number of attributes covered.
  size_t num_attributes() const { return num_attributes_; }

 private:
  size_t num_attributes_ = 0;
  std::vector<std::vector<UserConstraintPtr>> constraints_;
};

}  // namespace bclean

#endif  // BCLEAN_CONSTRAINTS_REGISTRY_H_
