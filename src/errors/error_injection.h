// Error injection following the paper's benchmark protocol (Section 7.1):
// typos (T) add/delete/replace one character; missing values (M) blank the
// cell; inconsistencies (I) substitute a different value from the same
// attribute's domain (a value that is valid somewhere but wrong here); and
// swapping errors (S) exchange two values — either two rows of the same
// attribute ("Same" in Figure 4e/f) or two attributes of the same tuple
// ("Different"). Injection records ground truth per corrupted cell.
#ifndef BCLEAN_ERRORS_ERROR_INJECTION_H_
#define BCLEAN_ERRORS_ERROR_INJECTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/data/table.h"

namespace bclean {

/// Error categories of the benchmark protocol.
enum class ErrorType { kTypo, kMissing, kInconsistency, kSwapSame, kSwapDiff };

/// Short name: "T", "M", "I", "S-same", "S-diff".
const char* ErrorTypeName(ErrorType type);

/// One corrupted cell.
struct InjectedError {
  size_t row = 0;
  size_t col = 0;
  ErrorType type = ErrorType::kTypo;
  std::string clean_value;
  std::string dirty_value;
};

/// Ground truth of an injection run.
class GroundTruth {
 public:
  /// Records an error (last writer wins per cell).
  void Record(InjectedError error);

  /// All recorded errors.
  const std::vector<InjectedError>& errors() const { return errors_; }

  /// Error type at (row, col), or nullptr when the cell is clean.
  const InjectedError* Find(size_t row, size_t col) const;

  /// Number of corrupted cells.
  size_t size() const { return errors_.size(); }

  /// Count of errors of each type (Figure 4a).
  std::map<ErrorType, size_t> CountsByType() const;

 private:
  std::vector<InjectedError> errors_;
  std::map<std::pair<size_t, size_t>, size_t> by_cell_;
};

/// Injection configuration. `error_rate` is the fraction of cells corrupted;
/// the per-type weights partition it (weights need not sum to 1).
struct InjectionOptions {
  double error_rate = 0.05;
  double typo_weight = 1.0;
  double missing_weight = 1.0;
  double inconsistency_weight = 1.0;
  double swap_same_weight = 0.0;
  double swap_diff_weight = 0.0;
  /// Columns exempt from injection (e.g. a key column kept clean).
  std::vector<size_t> protected_columns;
};

/// A dirty copy of a table plus its ground truth.
struct InjectionResult {
  Table dirty;
  GroundTruth ground_truth;
};

/// Corrupts `error_rate` of the cells of `clean`, sampling the error type
/// per cell according to the weights. Deterministic given `rng`'s seed.
/// Fails with InvalidArgument for rates outside [0, 1) or all-zero weights.
Result<InjectionResult> InjectErrors(const Table& clean,
                                     const InjectionOptions& options,
                                     Rng* rng);

/// Applies one typo (random add/delete/replace of one character) to `value`.
/// Guaranteed to differ from the input for non-empty inputs.
std::string ApplyTypo(const std::string& value, Rng* rng);

}  // namespace bclean

#endif  // BCLEAN_ERRORS_ERROR_INJECTION_H_
