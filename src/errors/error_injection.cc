#include "src/errors/error_injection.h"

#include <algorithm>

#include "src/data/domain_stats.h"

namespace bclean {

const char* ErrorTypeName(ErrorType type) {
  switch (type) {
    case ErrorType::kTypo: return "T";
    case ErrorType::kMissing: return "M";
    case ErrorType::kInconsistency: return "I";
    case ErrorType::kSwapSame: return "S-same";
    case ErrorType::kSwapDiff: return "S-diff";
  }
  return "?";
}

void GroundTruth::Record(InjectedError error) {
  auto key = std::make_pair(error.row, error.col);
  auto it = by_cell_.find(key);
  if (it != by_cell_.end()) {
    errors_[it->second] = std::move(error);
    return;
  }
  by_cell_[key] = errors_.size();
  errors_.push_back(std::move(error));
}

const InjectedError* GroundTruth::Find(size_t row, size_t col) const {
  auto it = by_cell_.find(std::make_pair(row, col));
  if (it == by_cell_.end()) return nullptr;
  return &errors_[it->second];
}

std::map<ErrorType, size_t> GroundTruth::CountsByType() const {
  std::map<ErrorType, size_t> counts;
  for (const InjectedError& e : errors_) ++counts[e.type];
  return counts;
}

std::string ApplyTypo(const std::string& value, Rng* rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;
  if (value.empty()) {
    return std::string(1, kAlphabet[rng->UniformIndex(kAlphabetSize)]);
  }
  std::string out = value;
  // Retry until the edit actually changes the string (replacing a char with
  // itself would silently produce a "clean error").
  for (int attempt = 0; attempt < 16; ++attempt) {
    out = value;
    switch (rng->UniformIndex(3)) {
      case 0: {  // add
        size_t pos = rng->UniformIndex(out.size() + 1);
        out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                   kAlphabet[rng->UniformIndex(kAlphabetSize)]);
        break;
      }
      case 1: {  // delete
        size_t pos = rng->UniformIndex(out.size());
        out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
        break;
      }
      default: {  // replace
        size_t pos = rng->UniformIndex(out.size());
        out[pos] = kAlphabet[rng->UniformIndex(kAlphabetSize)];
        break;
      }
    }
    if (out != value && !out.empty()) return out;
  }
  // Fall back to an append, which always changes a non-empty value.
  return value + kAlphabet[rng->UniformIndex(kAlphabetSize)];
}

namespace {

// Picks a domain value of column `col` different from `current`, or empty
// when the domain has no alternative.
std::string DifferentDomainValue(const DomainStats& stats, size_t col,
                                 const std::string& current, Rng* rng) {
  const ColumnStats& column = stats.column(col);
  if (column.DomainSize() < 2) return std::string();
  for (int attempt = 0; attempt < 32; ++attempt) {
    int32_t code = static_cast<int32_t>(rng->UniformIndex(column.DomainSize()));
    if (column.ValueOf(code) != current) return column.ValueOf(code);
  }
  return std::string();
}

}  // namespace

Result<InjectionResult> InjectErrors(const Table& clean,
                                     const InjectionOptions& options,
                                     Rng* rng) {
  if (options.error_rate < 0.0 || options.error_rate >= 1.0) {
    return Status::InvalidArgument("error_rate must lie in [0, 1)");
  }
  std::vector<double> weights = {
      options.typo_weight, options.missing_weight,
      options.inconsistency_weight, options.swap_same_weight,
      options.swap_diff_weight};
  double total_weight = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("weights must be >= 0");
    total_weight += w;
  }
  if (options.error_rate > 0.0 && total_weight <= 0.0) {
    return Status::InvalidArgument("at least one error weight must be > 0");
  }

  InjectionResult result;
  result.dirty = clean;
  if (clean.num_cells() == 0 || options.error_rate == 0.0) return result;

  DomainStats stats = DomainStats::Build(clean);
  std::vector<bool> protected_col(clean.num_cols(), false);
  for (size_t c : options.protected_columns) {
    if (c < clean.num_cols()) protected_col[c] = true;
  }

  size_t target = static_cast<size_t>(
      options.error_rate * static_cast<double>(clean.num_cells()));
  std::vector<size_t> cells =
      rng->SampleWithoutReplacement(clean.num_cells(), target * 2 + 16);

  size_t injected = 0;
  for (size_t flat : cells) {
    if (injected >= target) break;
    size_t row = flat / clean.num_cols();
    size_t col = flat % clean.num_cols();
    if (protected_col[col]) continue;
    // Skip cells already corrupted (swaps touch two cells).
    if (result.ground_truth.Find(row, col) != nullptr) continue;
    const std::string clean_value = clean.cell(row, col);

    ErrorType type;
    switch (rng->Weighted(weights)) {
      case 0: type = ErrorType::kTypo; break;
      case 1: type = ErrorType::kMissing; break;
      case 2: type = ErrorType::kInconsistency; break;
      case 3: type = ErrorType::kSwapSame; break;
      default: type = ErrorType::kSwapDiff; break;
    }

    switch (type) {
      case ErrorType::kTypo: {
        if (IsNull(clean_value)) continue;
        std::string dirty = ApplyTypo(clean_value, rng);
        result.dirty.set_cell(row, col, dirty);
        result.ground_truth.Record({row, col, type, clean_value, dirty});
        ++injected;
        break;
      }
      case ErrorType::kMissing: {
        if (IsNull(clean_value)) continue;
        result.dirty.set_cell(row, col, kNullValue);
        result.ground_truth.Record(
            {row, col, type, clean_value, kNullValue});
        ++injected;
        break;
      }
      case ErrorType::kInconsistency: {
        std::string dirty = DifferentDomainValue(stats, col, clean_value, rng);
        if (dirty.empty()) continue;
        result.dirty.set_cell(row, col, dirty);
        result.ground_truth.Record({row, col, type, clean_value, dirty});
        ++injected;
        break;
      }
      case ErrorType::kSwapSame: {
        if (clean.num_rows() < 2 || IsNull(clean_value)) continue;
        size_t other_row = rng->UniformIndex(clean.num_rows());
        if (other_row == row ||
            result.ground_truth.Find(other_row, col) != nullptr) {
          continue;
        }
        const std::string other_value = clean.cell(other_row, col);
        if (other_value == clean_value || IsNull(other_value)) continue;
        result.dirty.set_cell(row, col, other_value);
        result.dirty.set_cell(other_row, col, clean_value);
        result.ground_truth.Record(
            {row, col, type, clean_value, other_value});
        result.ground_truth.Record(
            {other_row, col, type, other_value, clean_value});
        injected += 2;
        break;
      }
      case ErrorType::kSwapDiff: {
        if (clean.num_cols() < 2 || IsNull(clean_value)) continue;
        size_t other_col = rng->UniformIndex(clean.num_cols());
        if (other_col == col || protected_col[other_col] ||
            result.ground_truth.Find(row, other_col) != nullptr) {
          continue;
        }
        const std::string other_value = clean.cell(row, other_col);
        if (other_value == clean_value || IsNull(other_value)) continue;
        result.dirty.set_cell(row, col, other_value);
        result.dirty.set_cell(row, other_col, clean_value);
        result.ground_truth.Record(
            {row, col, type, clean_value, other_value});
        result.ground_truth.Record(
            {row, other_col, type, other_value, clean_value});
        injected += 2;
        break;
      }
    }
  }
  return result;
}

}  // namespace bclean
