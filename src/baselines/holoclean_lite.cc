#include "src/baselines/holoclean_lite.h"

#include <map>
#include <unordered_map>

namespace bclean {

Result<HoloCleanLite> HoloCleanLite::Create(const Schema& schema,
                                            const std::vector<FdRule>& rules,
                                            const HoloCleanOptions& options) {
  std::vector<CompiledRule> compiled;
  compiled.reserve(rules.size());
  for (const FdRule& rule : rules) {
    CompiledRule c;
    for (const std::string& name : rule.lhs) {
      Result<size_t> idx = schema.IndexOf(name);
      if (!idx.ok()) return idx.status();
      c.lhs.push_back(idx.value());
    }
    Result<size_t> rhs = schema.IndexOf(rule.rhs);
    if (!rhs.ok()) return rhs.status();
    c.rhs = rhs.value();
    compiled.push_back(std::move(c));
  }
  return HoloCleanLite(std::move(compiled), options);
}

Table HoloCleanLite::Clean(const Table& dirty) const {
  // Rules are applied in order against the progressively repaired table,
  // so a later rule's lhs benefits from earlier repairs (entity rules
  // before derived ones) — a sequential stand-in for HoloClean's joint
  // factor-graph inference.
  Table result = dirty;
  const size_t n = dirty.num_rows();
  for (const CompiledRule& rule : rules_) {
    // Group rows by the (composite) lhs value and vote on the rhs.
    // NULL lhs components opt the row out of the group.
    std::unordered_map<std::string, std::map<std::string, size_t>> groups;
    std::vector<std::string> keys(n);
    for (size_t r = 0; r < n; ++r) {
      std::string key;
      bool usable = true;
      for (size_t col : rule.lhs) {
        const std::string& v = result.cell(r, col);
        if (IsNull(v)) {
          usable = false;
          break;
        }
        key += v;
        key += '\x1f';
      }
      if (!usable) continue;
      keys[r] = std::move(key);
      const std::string& rhs_value = result.cell(r, rule.rhs);
      if (!IsNull(rhs_value)) ++groups[keys[r]][rhs_value];
    }
    for (size_t r = 0; r < n; ++r) {
      if (keys[r].empty()) continue;
      auto group_it = groups.find(keys[r]);
      if (group_it == groups.end()) continue;
      const auto& votes = group_it->second;
      size_t total = 0;
      size_t best_count = 0;
      const std::string* best = nullptr;
      for (const auto& [value, count] : votes) {
        total += count;
        if (count > best_count) {
          best_count = count;
          best = &value;
        }
      }
      if (best == nullptr || total < options_.min_group_support) continue;
      double share =
          static_cast<double>(best_count) / static_cast<double>(total);
      if (share < options_.majority_threshold) continue;
      // Violation (minority value or NULL) repaired to the majority.
      const std::string& current = result.cell(r, rule.rhs);
      if (current != *best) {
        result.set_cell(r, rule.rhs, *best);
      }
    }
  }
  return result;
}

}  // namespace bclean
