#include "src/baselines/rahabaran_lite.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace bclean {
namespace {

// Collapses a value into a character-class signature, e.g. "25676x00" ->
// "dad" (digit-run, alpha-run, digit-run). Raha's pattern strategies key on
// exactly this kind of shape feature.
std::string FormatSignature(const std::string& value) {
  std::string sig;
  char last = 0;
  for (char c : value) {
    char cls;
    if (c >= '0' && c <= '9') cls = 'd';
    else if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) cls = 'a';
    else if (c == ' ') cls = ' ';
    else cls = 's';
    if (cls != last) {
      sig += cls;
      last = cls;
    }
  }
  return sig;
}

}  // namespace

Result<RahaBaranLite> RahaBaranLite::Create(
    const Table& dirty, const std::vector<size_t>& labeled_rows,
    const Table& clean_labels, const RahaBaranOptions& options) {
  if (dirty.num_rows() != clean_labels.num_rows() ||
      dirty.num_cols() != clean_labels.num_cols()) {
    return Status::InvalidArgument(
        "label table must have the dirty table's shape");
  }
  for (size_t r : labeled_rows) {
    if (r >= dirty.num_rows()) {
      return Status::OutOfRange("labeled row out of range");
    }
  }
  RahaBaranLite pipeline(dirty, DomainStats::Build(dirty), options);
  pipeline.BuildDetectors(labeled_rows, clean_labels);
  return pipeline;
}

void RahaBaranLite::BuildDetectors(const std::vector<size_t>& labeled_rows,
                                   const Table& clean_labels) {
  const size_t n = dirty_.num_rows();
  const size_t m = dirty_.num_cols();

  // Signature-outlier flags per distinct value of each column.
  rare_signature_.assign(m, {});
  for (size_t j = 0; j < m; ++j) {
    const ColumnStats& column = stats_.column(j);
    std::unordered_map<std::string, size_t> histogram;
    size_t total = 0;
    for (size_t v = 0; v < column.DomainSize(); ++v) {
      size_t count = column.Frequency(static_cast<int32_t>(v));
      histogram[FormatSignature(column.ValueOf(static_cast<int32_t>(v)))] +=
          count;
      total += count;
    }
    rare_signature_[j].resize(column.DomainSize());
    for (size_t v = 0; v < column.DomainSize(); ++v) {
      double share =
          total == 0
              ? 0.0
              : static_cast<double>(histogram[FormatSignature(
                    column.ValueOf(static_cast<int32_t>(v)))]) /
                    static_cast<double>(total);
      rare_signature_[j][v] = share < 0.05;
    }
  }

  // Discover FD partners and precompute per-group majorities: column k
  // informs column j when lhs groups of k vote near-unanimously on j.
  fd_partners_.assign(m, {});
  fd_majority_.assign(m, {});
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < m; ++k) {
      if (k == j) continue;
      std::unordered_map<int32_t, std::map<int32_t, size_t>> groups;
      for (size_t r = 0; r < n; ++r) {
        int32_t lhs = stats_.code(r, k);
        int32_t rhs = stats_.code(r, j);
        if (lhs < 0 || rhs < 0) continue;
        ++groups[lhs][rhs];
      }
      double agree = 0.0;
      double total = 0.0;
      std::unordered_map<int32_t, Majority> majorities;
      for (const auto& [lhs, votes] : groups) {
        size_t group_total = 0;
        size_t best_count = 0;
        int32_t best = kNullCode;
        for (const auto& [rhs, count] : votes) {
          group_total += count;
          if (count > best_count) {
            best_count = count;
            best = rhs;
          }
        }
        if (group_total < 3) continue;
        agree += static_cast<double>(best_count);
        total += static_cast<double>(group_total);
        majorities[lhs] = Majority{
            best, static_cast<double>(best_count) /
                      static_cast<double>(group_total)};
      }
      if (total >= static_cast<double>(n) / 4.0 &&
          agree / total >= options_.fd_confidence) {
        fd_partners_[j].push_back(k);
        fd_majority_[j][k] = std::move(majorities);
      }
    }
  }

  // Calibrate a per-column vote threshold on the detection labels — the
  // paper's "20 labelled tuples for Raha".
  size_t num_detect = std::min(options_.detection_labels,
                               labeled_rows.size());
  thresholds_.assign(m, 2);
  for (size_t j = 0; j < m; ++j) {
    int best_threshold = 2;
    int best_score = -1;
    for (int t = 1; t <= 3; ++t) {
      int score = 0;
      for (size_t i = 0; i < num_detect; ++i) {
        size_t r = labeled_rows[i];
        bool is_error = dirty_.cell(r, j) != clean_labels.cell(r, j);
        bool flagged = VoteCell(r, j) >= t;
        score += (is_error == flagged) ? 1 : 0;
      }
      if (score > best_score) {
        best_score = score;
        best_threshold = t;
      }
    }
    thresholds_[j] = best_threshold;
  }

  correction_rows_.assign(
      labeled_rows.begin() + static_cast<ptrdiff_t>(num_detect),
      labeled_rows.end());

  // Materialize the detection verdicts.
  detected_.assign(n, std::vector<bool>(m, false));
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < m; ++j) {
      detected_[r][j] = VoteCell(r, j) >= thresholds_[j];
    }
  }
}

int RahaBaranLite::VoteCell(size_t row, size_t col) const {
  const std::string& value = dirty_.cell(row, col);
  if (IsNull(value)) return 3;  // every strategy flags NULLs

  int votes = 0;
  const ColumnStats& column = stats_.column(col);
  int32_t code = stats_.code(row, col);

  // Strategy 1: frequency outlier.
  double mean_share = column.DomainSize() > 0
                          ? 1.0 / static_cast<double>(column.DomainSize())
                          : 1.0;
  double share = static_cast<double>(column.Frequency(code)) /
                 static_cast<double>(std::max<size_t>(1, dirty_.num_rows()));
  if (share < options_.rare_fraction * mean_share) ++votes;

  // Strategy 2: format-signature outlier.
  if (code >= 0 && rare_signature_[col][static_cast<size_t>(code)]) ++votes;

  // Strategy 3: FD violation against a discovered partner.
  for (size_t k : fd_partners_[col]) {
    const Majority* majority = FindMajority(col, k, stats_.code(row, k));
    if (majority != nullptr && majority->share >= options_.fd_confidence &&
        majority->value != code) {
      ++votes;
      break;
    }
  }
  return votes;
}

const RahaBaranLite::Majority* RahaBaranLite::FindMajority(
    size_t col, size_t partner, int32_t lhs) const {
  if (lhs < 0) return nullptr;
  auto partner_it = fd_majority_[col].find(partner);
  if (partner_it == fd_majority_[col].end()) return nullptr;
  auto it = partner_it->second.find(lhs);
  if (it == partner_it->second.end()) return nullptr;
  return &it->second;
}

Table RahaBaranLite::Clean() const {
  Table result = dirty_;
  const size_t n = dirty_.num_rows();
  const size_t m = dirty_.num_cols();

  // Baran-style correction for every detected cell: the FD-partner
  // majority when one exists, otherwise the column's most frequent value
  // sharing the dominant format. Undetected errors are never corrected —
  // the pipeline's published error-propagation weakness.
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < m; ++j) {
      if (!detected_[r][j]) continue;
      int32_t repaired = kNullCode;
      for (size_t k : fd_partners_[j]) {
        const Majority* majority = FindMajority(j, k, stats_.code(r, k));
        if (majority != nullptr && majority->value != stats_.code(r, j)) {
          repaired = majority->value;
          break;
        }
      }
      if (repaired < 0) {
        int32_t mode = stats_.column(j).MostFrequentCode();
        if (mode >= 0 && mode != stats_.code(r, j) &&
            !rare_signature_[j][static_cast<size_t>(mode)]) {
          repaired = mode;
        }
      }
      if (repaired >= 0) {
        result.set_cell(r, j, stats_.column(j).ValueOf(repaired));
      }
    }
  }
  return result;
}

}  // namespace bclean
