// GarfLite: a from-scratch stand-in for Garf (Peng et al., PVLDB 2022),
// which learns repair rules from the dirty data itself (via SeqGAN in the
// original; via confidence-thresholded rule mining here) and applies only
// high-confidence rules. Reproduces the published signature: ~1.0 precision
// with recall bounded by rule coverage — near zero on datasets without
// crisp value-level rules (Flights, Beers).
#ifndef BCLEAN_BASELINES_GARF_LITE_H_
#define BCLEAN_BASELINES_GARF_LITE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/data/domain_stats.h"
#include "src/data/table.h"

namespace bclean {

/// Tunables for GarfLite.
struct GarfOptions {
  /// Minimum occurrences of the rule body before a rule is trusted.
  size_t min_support = 4;
  /// Minimum P(head | body) for the rule to fire.
  double min_confidence = 0.9;
};

/// Self-supervised rule-based cleaner. Learns value-level rules
/// (A_j = x) => (A_k = y) from the dirty table, then repairs cells whose
/// value contradicts a trusted rule.
class GarfLite {
 public:
  /// Mines rules from `dirty`.
  static GarfLite Train(const Table& dirty, const GarfOptions& options = {});

  /// Applies the mined rules and returns the cleaned table.
  Table Clean() const;

  /// Number of trusted rules mined.
  size_t num_rules() const { return num_rules_; }

 private:
  struct Rule {
    int32_t head_value;
    double confidence;
  };

  GarfLite(const Table& dirty, DomainStats stats, GarfOptions options)
      : dirty_(dirty), stats_(std::move(stats)), options_(options) {}

  Table dirty_;
  DomainStats stats_;
  GarfOptions options_;
  // rules_[body_col * m + head_col][body_value] -> trusted head.
  std::vector<std::unordered_map<int32_t, Rule>> rules_;
  size_t num_rules_ = 0;
};

}  // namespace bclean

#endif  // BCLEAN_BASELINES_GARF_LITE_H_
