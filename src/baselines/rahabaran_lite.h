// RahaBaranLite: a from-scratch reimplementation of the semi-supervised
// detect-then-correct pipeline of Raha (SIGMOD 2019) + Baran (PVLDB 2020)
// used as a comparator in the paper. Detection runs an ensemble of
// strategies (format signature, frequency outlier, FD violation, NULL) and
// calibrates a per-column vote threshold on ~20 labelled tuples; correction
// votes context-compatible values, calibrated on ~20 corrected tuples.
// Reproduces the published failure mode: detection errors propagate into
// correction.
#ifndef BCLEAN_BASELINES_RAHABARAN_LITE_H_
#define BCLEAN_BASELINES_RAHABARAN_LITE_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/data/domain_stats.h"
#include "src/data/table.h"

namespace bclean {

/// Tunables for RahaBaranLite.
struct RahaBaranOptions {
  /// Labelled tuples for the detector (Raha's default-scale budget).
  size_t detection_labels = 20;
  /// Corrected tuples for the corrector (Baran's budget).
  size_t correction_labels = 20;
  /// A value is a frequency outlier when its share of the column is below
  /// this fraction of the column's mean value share.
  double rare_fraction = 0.25;
  /// FD-style detector: lhs share required to call a violation.
  double fd_confidence = 0.85;
};

/// Semi-supervised detect + correct cleaner.
class RahaBaranLite {
 public:
  /// `labeled_rows` indexes rows of `dirty` for which `clean_labels`
  /// provides ground truth (the user's labelling effort). The first
  /// `detection_labels` entries feed detection, the rest correction.
  /// Fails when tables disagree in shape or labels are out of range.
  static Result<RahaBaranLite> Create(const Table& dirty,
                                      const std::vector<size_t>& labeled_rows,
                                      const Table& clean_labels,
                                      const RahaBaranOptions& options = {});

  /// Runs detection + correction and returns the cleaned table.
  Table Clean() const;

  /// Detection verdicts from the last pipeline construction (per cell),
  /// exposed for tests: true = flagged as error.
  const std::vector<std::vector<bool>>& detected() const { return detected_; }

 private:
  struct Majority {
    int32_t value = -1;
    double share = 0.0;
  };

  RahaBaranLite(const Table& dirty, DomainStats stats,
                const RahaBaranOptions& options)
      : dirty_(dirty), stats_(std::move(stats)), options_(options) {}

  void BuildDetectors(const std::vector<size_t>& labeled_rows,
                      const Table& clean_labels);
  int VoteCell(size_t row, size_t col) const;
  const Majority* FindMajority(size_t col, size_t partner, int32_t lhs) const;

  Table dirty_;
  DomainStats stats_;
  RahaBaranOptions options_;
  // Per-column calibrated vote threshold (votes >= threshold => error).
  std::vector<int> thresholds_;
  // Per column: whether each distinct value's format signature is rare.
  std::vector<std::vector<bool>> rare_signature_;
  // Discovered FD partners per column.
  std::vector<std::vector<size_t>> fd_partners_;
  // fd_majority_[col][partner][lhs code] = majority rhs + its share.
  std::vector<std::unordered_map<
      size_t, std::unordered_map<int32_t, Majority>>>
      fd_majority_;
  std::vector<std::vector<bool>> detected_;
  std::vector<size_t> correction_rows_;
};

}  // namespace bclean

#endif  // BCLEAN_BASELINES_RAHABARAN_LITE_H_
