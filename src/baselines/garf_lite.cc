#include "src/baselines/garf_lite.h"

#include <map>

namespace bclean {

GarfLite GarfLite::Train(const Table& dirty, const GarfOptions& options) {
  GarfLite model(dirty, DomainStats::Build(dirty), options);
  const size_t n = dirty.num_rows();
  const size_t m = dirty.num_cols();
  model.rules_.assign(m * m, {});

  for (size_t body = 0; body < m; ++body) {
    for (size_t head = 0; head < m; ++head) {
      if (body == head) continue;
      // Count head values per body value.
      std::unordered_map<int32_t, std::map<int32_t, size_t>> groups;
      for (size_t r = 0; r < n; ++r) {
        int32_t b = model.stats_.code(r, body);
        int32_t h = model.stats_.code(r, head);
        if (b < 0 || h < 0) continue;
        ++groups[b][h];
      }
      auto& bucket = model.rules_[body * m + head];
      for (const auto& [b, votes] : groups) {
        size_t total = 0;
        size_t best_count = 0;
        int32_t best = kNullCode;
        for (const auto& [h, count] : votes) {
          total += count;
          if (count > best_count) {
            best_count = count;
            best = h;
          }
        }
        if (total < options.min_support) continue;
        double confidence =
            static_cast<double>(best_count) / static_cast<double>(total);
        if (confidence >= options.min_confidence) {
          bucket[b] = Rule{best, confidence};
          ++model.num_rules_;
        }
      }
    }
  }
  return model;
}

Table GarfLite::Clean() const {
  Table result = dirty_;
  const size_t n = dirty_.num_rows();
  const size_t m = dirty_.num_cols();
  for (size_t r = 0; r < n; ++r) {
    for (size_t head = 0; head < m; ++head) {
      // The strongest firing rule wins the cell.
      const Rule* strongest = nullptr;
      for (size_t body = 0; body < m; ++body) {
        if (body == head) continue;
        int32_t b = stats_.code(r, body);
        if (b < 0) continue;
        const auto& bucket = rules_[body * m + head];
        auto it = bucket.find(b);
        if (it == bucket.end()) continue;
        if (strongest == nullptr ||
            it->second.confidence > strongest->confidence) {
          strongest = &it->second;
        }
      }
      if (strongest != nullptr &&
          strongest->head_value != stats_.code(r, head)) {
        result.set_cell(r, head,
                        stats_.column(head).ValueOf(strongest->head_value));
      }
    }
  }
  return result;
}

}  // namespace bclean
