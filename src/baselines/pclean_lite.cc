#include "src/baselines/pclean_lite.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/datagen/pools.h"  // MixHash
#include "src/text/edit_distance.h"

namespace bclean {

Result<PCleanProgram> ProgramFor(const std::string& dataset) {
  // Precise expert models (the paper: PClean wins on Flights, is strong on
  // Hospital, because experts could model those domains exactly).
  if (dataset == "hospital") {
    return PCleanProgram{
        "hospital",
        {
            {"provider_number", {}, 0.02},
            {"hospital_name", {"provider_number"}, 0.05},
            {"address", {"provider_number"}, 0.05},
            {"city", {"zip_code"}, 0.02},
            {"state", {"zip_code"}, 0.02},
            {"zip_code", {"provider_number"}, 0.02},
            {"county_name", {"zip_code"}, 0.02},
            {"phone_number", {"provider_number"}, 0.02},
            {"hospital_type", {"provider_number"}, 0.02},
            {"hospital_owner", {"provider_number"}, 0.02},
            {"emergency_service", {"provider_number"}, 0.02},
            {"condition", {"measure_code"}, 0.02},
            {"measure_code", {"measure_name"}, 0.02},
            {"measure_name", {"measure_code"}, 0.05},
            {"state_avg", {"state", "measure_code"}, 0.05},
        },
        51};
  }
  if (dataset == "flights") {
    return PCleanProgram{
        "flights",
        {
            {"src", {}, 0.0},
            {"flight", {}, 0.02},
            {"sched_dep_time", {"flight"}, 0.3},
            {"act_dep_time", {"flight"}, 0.3},
            {"sched_arr_time", {"flight"}, 0.3},
            {"act_arr_time", {"flight"}, 0.3},
        },
        36};
  }
  // Coarse models: the paper reports users could not articulate the data
  // distributions for these datasets ("users can only estimate the
  // distributions based on their observations"), so the programs are
  // mostly independent priors with a noise channel — which is what makes
  // PClean collapse there.
  if (dataset == "soccer") {
    return PCleanProgram{
        "soccer",
        {
            {"name", {}, 0.05},
            {"birthyear", {}, 0.05},
            {"birthplace", {}, 0.05},
            {"position", {}, 0.05},
            {"club", {}, 0.05},
            {"city", {"club"}, 0.05},
            {"stadium", {}, 0.05},
            {"league", {}, 0.05},
            {"season", {}, 0.05},
            {"country", {}, 0.05},
        },
        37};
  }
  if (dataset == "beers") {
    return PCleanProgram{
        "beers",
        {
            {"id", {}, 0.1},
            {"beer_name", {}, 0.1},
            {"style", {}, 0.1},
            {"ounces", {}, 0.1},
            {"abv", {}, 0.1},
            {"ibu", {}, 0.1},
            {"brewery_id", {}, 0.1},
            {"brewery_name", {}, 0.1},
            {"city", {}, 0.1},
            {"state", {}, 0.1},
            {"established", {}, 0.1},
        },
        26};
  }
  if (dataset == "inpatient") {
    return PCleanProgram{
        "inpatient",
        {
            {"provider_id", {}, 0.05},
            {"hospital_name", {"provider_id"}, 0.05},
            {"address", {}, 0.05},
            {"city", {}, 0.05},
            {"state", {}, 0.05},
            {"zip_code", {}, 0.05},
            {"county", {}, 0.05},
            {"drg_code", {}, 0.05},
            {"drg_definition", {"drg_code"}, 0.05},
            {"total_discharges", {}, 0.05},
            {"avg_covered_charges", {}, 0.05},
        },
        54};
  }
  if (dataset == "facilities") {
    return PCleanProgram{
        "facilities",
        {
            {"facility_id", {}, 0.05},
            {"facility_name", {"facility_id"}, 0.05},
            {"address", {"facility_id"}, 0.05},
            {"city", {"zip_code"}, 0.05},
            {"state", {"zip_code"}, 0.05},
            {"zip_code", {}, 0.05},
            {"county", {"zip_code"}, 0.05},
            {"phone", {"facility_id"}, 0.05},
            {"facility_type", {}, 0.05},
            {"ownership", {}, 0.05},
            {"certification", {}, 0.05},
        },
        48};
  }
  return Status::NotFound("no PClean program for dataset '" + dataset + "'");
}

Result<PCleanLite> PCleanLite::Create(const Schema& schema,
                                      const PCleanProgram& program) {
  std::vector<CompiledSpec> specs;
  specs.reserve(program.attributes.size());
  for (const PCleanAttributeSpec& spec : program.attributes) {
    Result<size_t> attr = schema.IndexOf(spec.attribute);
    if (!attr.ok()) return attr.status();
    CompiledSpec compiled;
    compiled.attr = attr.value();
    compiled.typo_rate = spec.typo_rate;
    for (const std::string& parent : spec.parents) {
      Result<size_t> p = schema.IndexOf(parent);
      if (!p.ok()) return p.status();
      compiled.parents.push_back(p.value());
    }
    specs.push_back(std::move(compiled));
  }
  return PCleanLite(std::move(specs));
}

namespace {

// log P(observed | candidate) under the typo channel: each unit edit costs
// a factor of `typo_rate`; identical strings carry the remaining mass.
double LogChannel(const std::string& observed, const std::string& candidate,
                  double typo_rate) {
  if (observed == candidate) return std::log(1.0 - typo_rate + 1e-9);
  if (typo_rate <= 0.0) return -1e9;
  size_t distance = BoundedEditDistance(observed, candidate, 4);
  return static_cast<double>(distance) * std::log(typo_rate);
}

uint64_t KeyOf(const std::vector<size_t>& parents,
               const DomainStats& stats, size_t row) {
  uint64_t key = 0x51ED2701A5B61C11ull;
  for (size_t p : parents) {
    key = MixHash(key, static_cast<uint64_t>(stats.code(row, p) + 2));
  }
  return key;
}

}  // namespace

Table PCleanLite::Clean(const Table& dirty) const {
  DomainStats stats = DomainStats::Build(dirty);
  Table result = dirty;
  const size_t n = dirty.num_rows();

  for (const CompiledSpec& spec : specs_) {
    const ColumnStats& column = stats.column(spec.attr);
    if (column.DomainSize() == 0) continue;

    // Conditional (or marginal) counts under the hand-specified parents.
    std::unordered_map<uint64_t, std::unordered_map<int32_t, size_t>> counts;
    for (size_t r = 0; r < n; ++r) {
      int32_t code = stats.code(r, spec.attr);
      if (code < 0) continue;
      ++counts[KeyOf(spec.parents, stats, r)][code];
    }

    double k = static_cast<double>(column.DomainSize());
    for (size_t r = 0; r < n; ++r) {
      const std::string& observed = dirty.cell(r, spec.attr);
      auto& group = counts[KeyOf(spec.parents, stats, r)];
      double group_total = 0.0;
      for (const auto& [code, count] : group) {
        group_total += static_cast<double>(count);
      }
      int32_t best = stats.code(r, spec.attr);
      double best_score = -1e18;
      // Candidates limited to values seen under this parent configuration
      // (PClean's latent-object reuse); the observation itself competes.
      for (const auto& [code, count] : group) {
        double prior = (static_cast<double>(count) + 0.1) /
                       (group_total + 0.1 * k);
        double score =
            std::log(prior) +
            LogChannel(observed, column.ValueOf(code), spec.typo_rate);
        if (score > best_score) {
          best_score = score;
          best = code;
        }
      }
      if (best >= 0 && column.ValueOf(best) != observed) {
        result.set_cell(r, spec.attr, column.ValueOf(best));
      }
    }
  }
  return result;
}

}  // namespace bclean
