// PCleanLite: a from-scratch reimplementation of the essence of PClean
// (Lew et al., AISTATS 2021) — Bayesian cleaning driven by a hand-written
// domain-specific program. A PCleanProgram plays the role of the PPL model:
// per-attribute parent specifications (the expert's causal knowledge) and a
// typo noise channel. Inference scores every candidate by
//   log P(candidate | parents) + log P(observed | candidate)
// with P(observed | candidate) an edit-distance channel. Reproduces the
// published behaviour: excellent when the expert model is precise (Flights,
// Hospital), poor when the expert cannot articulate the distribution
// (Soccer, Beers) — the paper's Section 7.2.1 discussion.
#ifndef BCLEAN_BASELINES_PCLEAN_LITE_H_
#define BCLEAN_BASELINES_PCLEAN_LITE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/domain_stats.h"
#include "src/data/table.h"

namespace bclean {

/// The "PPL program": the expert's model of one attribute.
struct PCleanAttributeSpec {
  std::string attribute;
  /// Attributes this one depends on (empty = independent prior).
  std::vector<std::string> parents;
  /// Probability that an observation is corrupted by a typo channel.
  double typo_rate = 0.05;
};

/// The full hand-written model for a dataset.
struct PCleanProgram {
  std::string dataset;
  std::vector<PCleanAttributeSpec> attributes;
  /// Rough count of PPL lines this corresponds to (Table 2 reporting).
  int ppl_lines = 0;
};

/// Returns the hand-authored program for a benchmark dataset. Programs for
/// Hospital and Flights encode precise expert knowledge; Soccer, Beers and
/// Inpatient get the coarse models the paper says users managed to write.
/// Fails for unknown dataset names.
Result<PCleanProgram> ProgramFor(const std::string& dataset);

/// Hand-specified-prior Bayesian cleaner.
class PCleanLite {
 public:
  /// Compiles `program` against `schema`. Unknown attributes fail.
  static Result<PCleanLite> Create(const Schema& schema,
                                   const PCleanProgram& program);

  /// Repairs `dirty` by MAP inference under the program.
  Table Clean(const Table& dirty) const;

 private:
  struct CompiledSpec {
    size_t attr;
    std::vector<size_t> parents;
    double typo_rate;
  };

  explicit PCleanLite(std::vector<CompiledSpec> specs)
      : specs_(std::move(specs)) {}

  std::vector<CompiledSpec> specs_;
};

}  // namespace bclean

#endif  // BCLEAN_BASELINES_PCLEAN_LITE_H_
