// HoloCleanLite: a from-scratch reimplementation of the constraint-driven
// core of HoloClean (Rekatsinas et al., PVLDB 2017) used as a comparator in
// the paper's evaluation. Detection flags cells that violate expert
// dependency rules (or are NULL); repair votes among co-occurring candidate
// values with minimality and constraint features. Reproduces the published
// signature: very high precision, recall limited to rule-covered columns.
#ifndef BCLEAN_BASELINES_HOLOCLEAN_LITE_H_
#define BCLEAN_BASELINES_HOLOCLEAN_LITE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/domain_stats.h"
#include "src/data/table.h"
#include "src/datagen/benchmarks.h"

namespace bclean {

/// Tunables for HoloCleanLite.
struct HoloCleanOptions {
  /// A repair is emitted only when the majority candidate holds at least
  /// this fraction of the votes in its constraint group.
  double majority_threshold = 0.6;
  /// Minimum group support before any repair is attempted.
  size_t min_group_support = 2;
};

/// Constraint-based cleaner.
class HoloCleanLite {
 public:
  /// `rules` are the expert DC/FD rules (by attribute name) over `schema`.
  /// Fails when a rule mentions an unknown attribute.
  static Result<HoloCleanLite> Create(const Schema& schema,
                                      const std::vector<FdRule>& rules,
                                      const HoloCleanOptions& options = {});

  /// Repairs `dirty` and returns the cleaned table.
  Table Clean(const Table& dirty) const;

  /// Number of compiled rules.
  size_t num_rules() const { return rules_.size(); }

 private:
  struct CompiledRule {
    std::vector<size_t> lhs;
    size_t rhs;
  };

  HoloCleanLite(std::vector<CompiledRule> rules, HoloCleanOptions options)
      : rules_(std::move(rules)), options_(options) {}

  std::vector<CompiledRule> rules_;
  HoloCleanOptions options_;
};

}  // namespace bclean

#endif  // BCLEAN_BASELINES_HOLOCLEAN_LITE_H_
